/**
 * @file
 * Extension — standalone collective primitives (§VII-B).
 *
 * Reduce-scatter and all-gather (hybrid parallelism) and the DLRM
 * all-to-all, comparing the MultiTree-derived schedules against the
 * ring-derived / linear-shift baselines on the 8x8 torus.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "coll/primitives.hh"
#include "core/multitree.hh"

using namespace multitree;
using namespace multitree::bench;

namespace {

void
registerPoint(const std::string &name, coll::Schedule sched,
              const std::string &topo_spec)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [sched = std::move(sched),
         topo_spec](benchmark::State &state) {
            auto res =
                machineFor(topo_spec, runtime::Backend::Flow)
                    .run(sched);
            for (auto _ : state) {
                state.SetIterationTime(
                    static_cast<double>(res.time) * 1e-9);
                state.counters["GB/s"] = res.bandwidth;
                state.counters["sim_us"] =
                    static_cast<double>(res.time) / 1e3;
            }
        })
        ->UseManualTime()
        ->Iterations(1)
        ->Unit(benchmark::kMicrosecond);
}

void
registerAll()
{
    const std::string spec = "torus-8x8";
    auto topo = topo::makeTopology(spec);
    core::MultiTreeAllReduce mt;
    auto ring = coll::makeAlgorithm("ring");

    for (std::uint64_t bytes : {256 * KiB, 16 * MiB}) {
        std::string suffix = std::to_string(bytes / KiB) + "KiB";
        registerPoint("collectives/reduce-scatter/ring/" + suffix,
                      coll::buildReduceScatter(*ring, *topo, bytes),
                      spec);
        registerPoint("collectives/reduce-scatter/multitree/"
                          + suffix,
                      coll::buildReduceScatter(mt, *topo, bytes),
                      spec);
        registerPoint("collectives/all-gather/ring/" + suffix,
                      coll::buildAllGather(*ring, *topo, bytes),
                      spec);
        registerPoint("collectives/all-gather/multitree/" + suffix,
                      coll::buildAllGather(mt, *topo, bytes), spec);
    }
    // All-to-all sized per pair: 1 KiB and 16 KiB per ordered pair.
    const int n = topo->numNodes();
    auto trees = mt.build(*topo, 4096);
    for (std::uint64_t per_pair : {1 * KiB, 16 * KiB}) {
        std::uint64_t bytes =
            per_pair * static_cast<std::uint64_t>(n) * (n - 1);
        std::string suffix =
            std::to_string(per_pair / KiB) + "KiBpp";
        registerPoint("collectives/all-to-all/shift/" + suffix,
                      coll::buildAllToAllShift(*topo, bytes), spec);
        registerPoint("collectives/all-to-all/multitree/" + suffix,
                      coll::buildAllToAllFromTrees(trees, bytes),
                      spec);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
