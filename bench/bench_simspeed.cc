/**
 * @file
 * Simulator-throughput benchmark (the perf trajectory, not a paper
 * figure): wall-clock time, simulated cycles and Msim-cycles/s for
 * ring / halving-doubling / MultiTree on 4x4 and 8x8 tori plus a
 * fat-tree, on both backends. Flit cases run twice — the active-set
 * scheduler and the dense reference loop (NetworkConfig::dense_tick)
 * — so BENCH_results.json records the speedup of the activation
 * discipline itself alongside the absolute throughput numbers.
 *
 * Unlike the figure benches this reports *wall* time: the quantity
 * of interest is how fast the simulator chews through fabric cycles,
 * which gates every sweep in EXPERIMENTS.md. Each point is warmed
 * once (pools and FIFOs sized) and then timed over the best of
 * kTimedRuns back-to-back collectives on the persistent Machine.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace {

using namespace multitree;

constexpr int kTimedRuns = 3;

struct Point {
    std::string topo;
    std::string algo;
    std::uint64_t bytes;
    runtime::Backend backend;
    bool dense = false; ///< flit only: force the dense reference loop
    std::uint32_t threads = 1; ///< parallel-engine worker count
    int runs = kTimedRuns;     ///< 1 for the paper-scale fabrics
};

std::string
modeName(const Point &p)
{
    if (p.backend == runtime::Backend::Flow)
        return "flow";
    std::string mode = p.dense ? "dense" : "active";
    if (p.threads > 1)
        mode += "-t" + std::to_string(p.threads);
    return mode;
}

/** Run one point: 1 warmup + p.runs timed, best wall kept. The
 *  paper-scale fabrics (runs == 1) skip the warmup: a cold first run
 *  is an honest number there, and a second multi-minute collective
 *  is not worth the pool-sizing noise it removes. */
void
runPoint(const Point &p)
{
    auto topo = topo::makeTopology(p.topo);
    runtime::RunOptions opts;
    opts.backend = p.backend;
    opts.net.dense_tick = p.dense;
    opts.net.threads = p.threads;
    runtime::Machine machine(*topo, opts);

    if (p.runs > 1)
        machine.run(p.algo, p.bytes); // warm pools, FIFOs, event heap

    double best_s = 0;
    runtime::RunResult res;
    for (int i = 0; i < p.runs; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        res = machine.run(p.algo, p.bytes);
        const auto t1 = std::chrono::steady_clock::now();
        const double s =
            std::chrono::duration<double>(t1 - t0).count();
        if (i == 0 || s < best_s)
            best_s = s;
    }

    bench::BenchRow row;
    const std::string mode = modeName(p);
    row.name = "simspeed/" + p.topo + "/" + p.algo + "/"
               + std::to_string(p.bytes) + "/" + mode;
    row.topo = p.topo;
    row.algo = p.algo;
    row.bytes = p.bytes;
    row.cycles = res.time;
    row.bandwidth_gbps = res.bandwidth;
    row.messages = res.messages;
    row.wall_ms = best_s * 1e3;
    row.msim_cps = best_s > 0 ? static_cast<double>(res.time)
                                    / best_s * 1e-6
                              : 0;
    row.mode = mode;
    bench::recordBenchRow(row);

    std::printf("%-44s %10llu cyc  %9.2f ms  %9.2f Mcyc/s\n",
                row.name.c_str(),
                static_cast<unsigned long long>(res.time),
                row.wall_ms, row.msim_cps);
}

} // namespace

int
main()
{
    const std::vector<std::string> algos = {"ring", "hd", "multitree"};
    // Throughput-bound flit payload; the flow backend is O(hops) per
    // message, so it gets a figure-sized payload instead.
    constexpr std::uint64_t kFlitBytes = 64 * KiB;
    constexpr std::uint64_t kFlowBytes = 8 * MiB;
    // Latency-bound payload: most wall-clock goes to cycles in which
    // every flit is mid-wire, the idle-heavy case the active-set
    // scheduler fast-forwards through.
    constexpr std::uint64_t kIdleBytes = 4 * KiB;

    std::vector<Point> points;
    for (const std::string &topo :
         {std::string("torus-4x4"), std::string("torus-8x8"),
          std::string("fattree-16")}) {
        for (const std::string &algo : algos) {
            if (!bench::supported(topo, algo))
                continue;
            points.push_back(
                {topo, algo, kFlowBytes, runtime::Backend::Flow});
            points.push_back(
                {topo, algo, kFlitBytes, runtime::Backend::Flit});
            points.push_back({topo, algo, kFlitBytes,
                              runtime::Backend::Flit, true});
        }
    }
    // The idle-heavy showcase rows (torus-8x8, small payload).
    for (const std::string &algo : algos) {
        points.push_back(
            {"torus-8x8", algo, kIdleBytes, runtime::Backend::Flit});
        points.push_back({"torus-8x8", algo, kIdleBytes,
                          runtime::Backend::Flit, true});
    }
    // Parallel-engine rows: a saturated 16x16 torus at 1, 2 and 4
    // workers plus the dense oracle. The *-t4 / active wall-clock
    // ratio is the headline number; on a single-core host it is an
    // honest slowdown (barrier overhead with nothing to overlap), so
    // consumers must read it next to the recording host's core count.
    constexpr std::uint64_t kSatBytes = 256 * KiB;
    for (std::uint32_t threads : {1u, 2u, 4u}) {
        points.push_back({"torus-16x16", "multitree", kSatBytes,
                          runtime::Backend::Flit, false, threads});
    }
    points.push_back({"torus-16x16", "multitree", kSatBytes,
                      runtime::Backend::Flit, true});
    // Paper-scale firsts — a 1024-node torus and a 1024-node fat-tree
    // — cost minutes per collective, so they run once (no warmup,
    // no best-of) and only when asked for: MT_SIMSPEED_LARGE=1.
    if (std::getenv("MT_SIMSPEED_LARGE") != nullptr) {
        for (const std::string &topo :
             {std::string("torus-32x32"),
              std::string("fattree-32:32:16")}) {
            points.push_back({topo, "multitree", 16 * KiB,
                              runtime::Backend::Flit, false, 1,
                              /*runs=*/1});
            points.push_back({topo, "multitree", 16 * KiB,
                              runtime::Backend::Flit, false, 4,
                              /*runs=*/1});
        }
    }

    std::printf("%-44s %14s %12s %14s\n", "point", "sim cycles",
                "wall", "throughput");
    for (const Point &p : points)
        runPoint(p);

    // Headline ratios: active-set vs dense wall time per flit pair.
    auto wallOf = [](const std::string &name) -> double {
        for (const auto &r : bench::benchRows()) {
            if (r.name == name)
                return r.wall_ms;
        }
        return 0;
    };
    std::printf("\nactive-set speedup vs dense reference loop:\n");
    for (const Point &p : points) {
        if (p.backend != runtime::Backend::Flit || p.dense
            || p.threads > 1)
            continue;
        const std::string base = "simspeed/" + p.topo + "/" + p.algo
                                 + "/" + std::to_string(p.bytes);
        const double act = wallOf(base + "/active");
        const double den = wallOf(base + "/dense");
        if (act > 0 && den > 0) {
            std::printf("  %-40s %6.2fx\n", base.c_str(), den / act);
        }
    }

    std::printf("\nparallel-engine speedup vs 1-thread active:\n");
    for (const Point &p : points) {
        if (p.backend != runtime::Backend::Flit || p.dense
            || p.threads <= 1)
            continue;
        const std::string base = "simspeed/" + p.topo + "/" + p.algo
                                 + "/" + std::to_string(p.bytes);
        const double serial = wallOf(base + "/active");
        const double par = wallOf(base + "/" + modeName(p));
        if (serial > 0 && par > 0) {
            std::printf("  %-40s t%u: %6.2fx\n", base.c_str(),
                        p.threads, serial / par);
        }
    }
    return 0;
}
