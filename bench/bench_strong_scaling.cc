/**
 * @file
 * Strong scalability (§VI-B's closing remark): a fixed large
 * all-reduce (96 MiB ≈ a 24M-parameter model) across growing torus
 * sizes. The paper observes "only small variation for each
 * algorithm since they are all contention-free and serialization
 * latency is more dominant for large all-reduce size" — i.e. time
 * stays roughly flat with node count for the bandwidth-optimal
 * algorithms, because per-node data shrinks as fast as the step
 * count grows.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace multitree;
using namespace multitree::bench;

namespace {

void
registerAll()
{
    const std::uint64_t bytes = 96 * MiB;
    const std::vector<std::pair<std::string, int>> scales = {
        {"torus-4x4", 16},
        {"torus-8x4", 32},
        {"torus-8x8", 64},
        {"torus-16x8", 128},
        {"torus-16x16", 256},
    };
    for (const auto &[topo, n] : scales) {
        for (const char *algo : {"ring", "ring2d", "multitree-msg"}) {
            std::string name = std::string("strong/") + topo + "/"
                               + algo + "/N" + std::to_string(n);
            std::string t = topo, a = algo;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [t, a](benchmark::State &state) {
                    auto res = simulate(t, a, 96 * MiB);
                    for (auto _ : state) {
                        state.SetIterationTime(
                            static_cast<double>(res.time) * 1e-9);
                        state.counters["GB/s"] = res.bandwidth;
                        state.counters["sim_ms"] =
                            static_cast<double>(res.time) / 1e6;
                    }
                })
                ->UseManualTime()
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    (void)bytes;
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
