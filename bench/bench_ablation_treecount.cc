/**
 * @file
 * Ablation — tree count versus bandwidth and latency (§VII-C).
 *
 * The paper points at Blink's tree-count reduction as a future
 * bandwidth/latency trade-off. With k < N trees, each chunk is
 * larger and the schedule shorter, but fewer channels work
 * concurrently. Series report per-k bandwidth at a small and a large
 * payload on the 8x8 torus.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "core/multitree.hh"

using namespace multitree;
using namespace multitree::bench;

namespace {

void
registerAll()
{
    for (int k : {1, 2, 4, 8, 16, 32, 64}) {
        for (std::uint64_t bytes : {4 * KiB, 64 * KiB, 16 * MiB}) {
            std::string name = "ablation_treecount/torus-8x8/k"
                               + std::to_string(k) + "/"
                               + std::to_string(bytes / KiB) + "KiB";
            benchmark::RegisterBenchmark(
                name.c_str(),
                [k, bytes](benchmark::State &state) {
                    auto &machine = machineFor(
                        "torus-8x8", runtime::Backend::Flow);
                    core::MultiTreeOptions opts;
                    opts.num_trees = k;
                    core::MultiTreeAllReduce mt(opts);
                    auto sched =
                        mt.build(machine.topology(), bytes);
                    auto res = machine.run(sched);
                    for (auto _ : state) {
                        state.SetIterationTime(
                            static_cast<double>(res.time) * 1e-9);
                        state.counters["GB/s"] = res.bandwidth;
                        state.counters["trees"] = k;
                        state.counters["steps"] =
                            static_cast<double>(sched.totalSteps());
                        state.counters["transfers"] =
                            static_cast<double>(res.messages);
                    }
                })
                ->UseManualTime()
                ->Iterations(1)
                ->Unit(benchmark::kMicrosecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
