/**
 * @file
 * Fig. 10 — weak scalability on Torus, 16 to 256 accelerators.
 *
 * All-reduce size 375*N KiB for N nodes; the series report each
 * algorithm's communication time normalized to Ring's 16-node time
 * (counter `norm_vs_ring16`, higher is worse) and the speedup of the
 * algorithm over Ring at the same scale. The paper's summary: every
 * algorithm scales linearly, MultiTreeMsg with the smallest factor —
 * about 3x over Ring and 1.4x over 2D-Ring at scale.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

using namespace multitree;
using namespace multitree::bench;

namespace {

const std::vector<std::pair<std::string, int>> kScales = {
    {"torus-4x4", 16},
    {"torus-8x4", 32},
    {"torus-8x8", 64},
    {"torus-16x8", 128},
    {"torus-16x16", 256},
};

double g_ring16_time = 0; ///< Ring time on 16 nodes (norm base)

void
registerAll()
{
    // Normalization base: Ring at 16 nodes, computed once up front.
    g_ring16_time = static_cast<double>(
        simulate("torus-4x4", "ring", 375 * KiB * 16).time);

    for (const auto &[topo, n] : kScales) {
        std::uint64_t bytes = 375 * KiB * static_cast<std::uint64_t>(n);
        for (const char *algo : {"ring", "ring2d", "multitree-msg"}) {
            std::string name = std::string("fig10/") + topo + "/"
                               + algo + "/N" + std::to_string(n);
            std::string topo_spec = topo;
            std::string algo_name = algo;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [topo_spec, algo_name,
                 bytes](benchmark::State &state) {
                    auto res = simulate(topo_spec, algo_name, bytes);
                    auto ring =
                        algo_name == "ring"
                            ? res
                            : simulate(topo_spec, "ring", bytes);
                    for (auto _ : state) {
                        state.SetIterationTime(
                            static_cast<double>(res.time) * 1e-9);
                        state.counters["GB/s"] = res.bandwidth;
                        state.counters["norm_vs_ring16"] =
                            static_cast<double>(res.time)
                            / g_ring16_time;
                        state.counters["speedup_vs_ring"] =
                            static_cast<double>(ring.time)
                            / static_cast<double>(res.time);
                    }
                })
                ->UseManualTime()
                ->Iterations(1)
                ->Unit(benchmark::kMicrosecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
