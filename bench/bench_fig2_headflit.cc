/**
 * @file
 * Fig. 2 — packet head-flit bandwidth overhead.
 *
 * The paper motivates message-based flow control with the head-flit
 * tax of conventional packets: 16-byte flits under 64-256-byte
 * payloads waste 6-25% of link bandwidth on heads. This bench
 * reports the analytic fraction for each payload and cross-checks it
 * against a measured single-link transfer in the flow model.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "net/flow_control.hh"
#include "net/flow_network.hh"
#include "sim/event_queue.hh"
#include "topo/grid.hh"

namespace {

using namespace multitree;

void
BM_HeadFlitOverhead(benchmark::State &state)
{
    auto payload = static_cast<std::uint32_t>(state.range(0));
    net::NetworkConfig cfg;
    cfg.packet_payload = payload;

    // Measured: one 1 MiB transfer across one link, packet mode vs
    // message mode; the time delta is pure head-flit overhead.
    topo::Mesh2D line(2, 1);
    double measured = 0;
    {
        sim::EventQueue eq;
        net::FlowNetwork pkt_net(eq, line, cfg);
        Tick t_pkt = 0;
        pkt_net.onDeliver([&](const net::Message &) {
            t_pkt = eq.now();
        });
        net::Message m;
        m.src = 0;
        m.dst = 1;
        m.bytes = 1 * MiB;
        m.route = line.route(0, 1);
        pkt_net.inject(m);
        eq.run();

        sim::EventQueue eq2;
        net::NetworkConfig msg_cfg = cfg;
        msg_cfg.mode = net::FlowControlMode::MessageBased;
        net::FlowNetwork msg_net(eq2, line, msg_cfg);
        Tick t_msg = 0;
        msg_net.onDeliver([&](const net::Message &) {
            t_msg = eq2.now();
        });
        msg_net.inject(m);
        eq2.run();
        measured = 1.0
                   - static_cast<double>(t_msg)
                         / static_cast<double>(t_pkt);
    }

    double analytic = net::headFlitOverhead(payload, cfg.flit_bytes);
    for (auto _ : state) {
        state.SetIterationTime(analytic);
        state.counters["overhead_pct"] = 100.0 * analytic;
        state.counters["measured_pct"] = 100.0 * measured;
        state.counters["payload_B"] = payload;
    }
}

BENCHMARK(BM_HeadFlitOverhead)
    ->Arg(64)
    ->Arg(128)
    ->Arg(192)
    ->Arg(256)
    ->UseManualTime()
    ->Iterations(1);

} // namespace

BENCHMARK_MAIN();
