/**
 * @file
 * Ablation — message-based flow control applied to every algorithm.
 *
 * §VI-C notes the message-based flow control is not MultiTree-
 * specific: the ~6% head-flit saving helps any all-reduce. Counter
 * `msg_gain` is time(packet-based) / time(message-based) for each
 * algorithm on the 8x8 Torus at 8 MiB.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "net/energy.hh"

using namespace multitree;
using namespace multitree::bench;

namespace {

runtime::RunResult
simulateMode(const std::string &topo_spec, const std::string &algo,
             std::uint64_t bytes, net::FlowControlMode mode)
{
    // Both flow-control flavors run back-to-back on the same cached
    // fabric; the per-run override swaps the wire protocol between
    // collectives.
    runtime::RunOverrides ov;
    ov.flow_control = mode;
    return machineFor(topo_spec, runtime::Backend::Flow)
        .run(algo, bytes, ov);
}

void
registerAll()
{
    for (const char *algo :
         {"ring", "dbtree", "ring2d", "hd", "multitree"}) {
        std::string name =
            std::string("ablation_msgflow/torus-8x8/") + algo;
        std::string a = algo;
        benchmark::RegisterBenchmark(
            name.c_str(),
            [a](benchmark::State &state) {
                auto pkt = simulateMode(
                    "torus-8x8", a, 8 * MiB,
                    net::FlowControlMode::PacketBased);
                auto msg = simulateMode(
                    "torus-8x8", a, 8 * MiB,
                    net::FlowControlMode::MessageBased);
                for (auto _ : state) {
                    state.SetIterationTime(
                        static_cast<double>(msg.time) * 1e-9);
                    state.counters["packet_us"] =
                        static_cast<double>(pkt.time) / 1e3;
                    state.counters["message_us"] =
                        static_cast<double>(msg.time) / 1e3;
                    state.counters["msg_gain"] =
                        static_cast<double>(pkt.time)
                        / static_cast<double>(msg.time);
                    state.counters["head_flits_saved"] =
                        pkt.head_flits - msg.head_flits;
                    auto e_pkt = net::computeEnergy(pkt.flit_hops,
                                                    pkt.head_hops);
                    auto e_msg = net::computeEnergy(msg.flit_hops,
                                                    msg.head_hops);
                    state.counters["energy_uJ_pkt"] =
                        e_pkt.total_nj() / 1e3;
                    state.counters["energy_uJ_msg"] =
                        e_msg.total_nj() / 1e3;
                    state.counters["control_energy_cut"] =
                        1.0 - e_msg.control_nj / e_pkt.control_nj;
                }
            })
            ->UseManualTime()
            ->Iterations(1)
            ->Unit(benchmark::kMicrosecond);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
