/**
 * @file
 * Table I — measured comparison of the all-reduce algorithms.
 *
 * The paper's qualitative table, regenerated from measurements:
 *  - "Latency (small data)"  → simulated 32 KiB all-reduce time
 *  - "Bandwidth (large data)" → simulated 32 MiB bandwidth, plus the
 *    schedule's peak per-channel byte load (the serialization bound)
 *  - "Contention"            → the structural contention-free check
 *  - "Applies to various topologies" → the supports() matrix
 *
 * Rows are (algorithm, topology) pairs; the binary also prints the
 * support matrix at startup.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.hh"
#include "coll/validate.hh"
#include "common/strings.hh"

using namespace multitree;
using namespace multitree::bench;

namespace {

const std::vector<std::string> kAlgos = {"ring",  "dbtree", "ring2d",
                                         "hd",    "hdrm",
                                         "multitree"};
const std::vector<std::string> kTopos = {"torus-8x8", "mesh-8x8",
                                         "fattree-64",
                                         "bigraph-4x16"};

void
printSupportMatrix()
{
    TextTable table;
    std::vector<std::string> header = {"algorithm"};
    for (const auto &t : kTopos)
        header.push_back(t);
    table.header(header);
    for (const auto &a : kAlgos) {
        std::vector<std::string> row = {a};
        for (const auto &t : kTopos)
            row.push_back(supported(t, a) ? "yes" : "no");
        table.row(row);
    }
    std::printf("Table I support matrix (applies to topology?):\n%s\n",
                table.render().c_str());
}

void
registerAll()
{
    for (const auto &topo_spec : kTopos) {
        for (const auto &algo : kAlgos) {
            if (!supported(topo_spec, algo))
                continue;
            std::string name =
                "table1/" + topo_spec + "/" + algo;
            benchmark::RegisterBenchmark(
                name.c_str(),
                [topo_spec, algo](benchmark::State &state) {
                    auto topo = topo::makeTopology(topo_spec);
                    auto a = coll::makeAlgorithm(algo);
                    auto small = simulate(topo_spec, algo, 32 * KiB);
                    auto large = simulate(topo_spec, algo, 32 * MiB);
                    auto sched = a->build(*topo, 32 * MiB);
                    auto stats = sched.stats(*topo);
                    bool cfree =
                        coll::validateContentionFree(sched, *topo).ok;
                    for (auto _ : state) {
                        state.SetIterationTime(
                            static_cast<double>(small.time) * 1e-9);
                        state.counters["small_us"] =
                            static_cast<double>(small.time) / 1e3;
                        state.counters["large_GBps"] =
                            large.bandwidth;
                        state.counters["steps"] =
                            static_cast<double>(stats.total_steps);
                        state.counters["peak_chan_MiB"] =
                            stats.max_channel_bytes
                            / static_cast<double>(MiB);
                        state.counters["contention_free"] =
                            cfree ? 1 : 0;
                    }
                })
                ->UseManualTime()
                ->Iterations(1)
                ->Unit(benchmark::kMicrosecond);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    printSupportMatrix();
    registerAll();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
