/**
 * @file
 * Topology explorer: sweep an all-reduce size across every evaluated
 * topology and print per-algorithm bandwidth — a miniature of the
 * paper's Fig. 9 study, useful for eyeballing who wins where.
 *
 *   ./topology_explorer [bytes]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "coll/algorithm.hh"
#include "common/strings.hh"
#include "runtime/machine.hh"
#include "topo/factory.hh"

int
main(int argc, char **argv)
{
    using namespace multitree;

    std::uint64_t bytes =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1 * MiB;

    const std::vector<std::string> topologies = {
        "torus-4x4",   "torus-8x8", "mesh-4x4",     "mesh-8x8",
        "fattree-16",  "fattree-64", "bigraph-4x8", "bigraph-4x16"};
    const std::vector<std::string> algos = {
        "ring", "dbtree", "ring2d", "hd", "hdrm", "multitree",
        "multitree-msg"};

    std::printf("All-reduce bandwidth (GB/s) for %s payloads\n\n",
                formatBytes(bytes).c_str());

    TextTable table;
    std::vector<std::string> header = {"topology"};
    for (const auto &a : algos)
        header.push_back(a);
    table.header(header);

    for (const auto &spec : topologies) {
        auto topo = topo::makeTopology(spec);
        // One machine per topology; every algorithm reuses it.
        runtime::Machine machine(*topo);
        std::vector<std::string> row = {spec};
        for (const auto &algo : algos) {
            auto check = coll::makeAlgorithm(
                coll::findAlgorithmVariant(algo).base);
            if (!check->supports(*topo)) {
                row.push_back("-");
                continue;
            }
            auto res = machine.run(algo, bytes);
            row.push_back(formatDouble(res.bandwidth, 2));
        }
        table.row(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("('-' = algorithm does not support that topology; "
                "MultiTree supports everything)\n");
    return 0;
}
