/**
 * @file
 * mtdiff — the cross-run regression observatory.
 *
 * Loads two JSON artifacts this project writes — metrics snapshots
 * (mtsim --metrics-out), latency profiles (mtsim --profile-out) or
 * benchmark results files (BENCH_results.json / mtsweep --out) —
 * aligns them, and attributes every difference as finely as the
 * artifact allows:
 *
 *   metrics  A-vs-B on result/report/stat totals, with the
 *            "timeseries" section (when both runs sampled) pinning a
 *            delta to the schedule phase, rail and first divergent
 *            sample window;
 *   profile  A-vs-B on end-to-end cycles, decomposed by the
 *            critical-path category rollup (nic_wait, inj_queue,
 *            head_route, serialization, credit_stall, reduction) and
 *            per-phase summaries — when both critical paths tile,
 *            the rollup deltas sum exactly to the cycles delta and
 *            any residual is flagged as unattributed;
 *   results  rows aligned by name, per-row cycle/bandwidth deltas,
 *            each side's git commit stamp named in the verdict.
 *
 *   ./mtdiff A.json B.json [--tolerance FRAC] [--out FILE]
 *            [--report FILE]
 *
 * Emits a machine-readable verdict JSON (stdout or --out) and
 * optionally a markdown report (--report). Exit status: 0 when no
 * delta exceeds --tolerance (default 0: bit-identical runs of one
 * configuration must match exactly), 1 on a regression or any
 * unattributed delta, 2 on unreadable/mismatched inputs. Inputs with
 * a schema_version stamp from an incompatible writer are refused
 * (exit 2) rather than misread.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "obs/profile.hh"
#include "obs/results.hh"
#include "obs/trace.hh"
#include "runtime/metrics.hh"

namespace {

using multitree::obs::json::Value;
using multitree::obs::json::parseFile;

/** One observed difference between the two runs. */
struct Delta {
    std::string key;  ///< dotted path or row name, e.g. "result.time"
    double a = 0;
    double b = 0;
    std::string note;    ///< attribution, empty when none found
    bool gating = false; ///< counts toward the verdict (vs context)
};

struct Diff {
    std::string kind; ///< "metrics" / "profile" / "results"
    std::vector<Delta> deltas;
    std::vector<std::string> unattributed;
    std::string commit_a = "unknown";
    std::string commit_b = "unknown";
};

double
relDelta(double a, double b)
{
    const double base = std::max(std::fabs(a), std::fabs(b));
    return base == 0 ? 0 : std::fabs(b - a) / base;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: mtdiff A.json B.json [--tolerance FRAC]\n"
        "              [--out FILE] [--report FILE]\n"
        "inputs: two metrics snapshots, two profiles, or two\n"
        "        BENCH_results.json files (auto-detected)\n"
        "exit:   0 no regression, 1 regression/unattributed delta,\n"
        "        2 bad input\n");
}

std::string
detectKind(const Value &doc)
{
    if (!doc.isObject())
        return {};
    const Value *results = doc.find("results");
    if (results != nullptr && results->isArray())
        return "results";
    if (doc.find("critical_path") != nullptr)
        return "profile";
    if (doc.find("result") != nullptr)
        return "metrics";
    return {};
}

int
expectedSchema(const std::string &kind)
{
    if (kind == "metrics")
        return multitree::runtime::kMetricsSchemaVersion;
    if (kind == "profile")
        return multitree::obs::kProfileSchemaVersion;
    return multitree::obs::kResultsSchemaVersion;
}

/** Diff every number member of object @p key in both docs. */
void
diffNumericObject(const Value &a, const Value &b,
                  const std::string &key, bool gating, Diff &out)
{
    const Value *oa = a.find(key);
    const Value *ob = b.find(key);
    if (oa == nullptr || ob == nullptr || !oa->isObject()
        || !ob->isObject())
        return;
    for (const auto &[k, va] : oa->obj) {
        if (!va.isNumber())
            continue;
        const double vb = ob->num(k, va.number);
        if (va.number == vb)
            continue;
        Delta d;
        d.key = key + "." + k;
        d.a = va.number;
        d.b = vb;
        d.gating = gating;
        out.deltas.push_back(std::move(d));
    }
}

/**
 * Pin the metrics delta to phase/rail/first-divergent-window using
 * the timeseries sections. Returns the attribution note ("" when the
 * series are absent or identical).
 */
std::string
attributeFromTimeseries(const Value &a, const Value &b, Diff &out)
{
    const Value *tsa = a.find("timeseries");
    const Value *tsb = b.find("timeseries");
    if (tsa == nullptr || tsb == nullptr)
        return {};
    const Value *fa = tsa->find("frames");
    const Value *fb = tsb->find("frames");
    if (fa == nullptr || fb == nullptr || !fa->isArray()
        || !fb->isArray())
        return {};

    std::ostringstream note;

    // Final-frame per-phase delivered bytes: which phase moved?
    const Value *la = fa->arr.empty() ? nullptr : &fa->arr.back();
    const Value *lb = fb->arr.empty() ? nullptr : &fb->arr.back();
    const Value *phases = tsa->find("phases");
    if (la != nullptr && lb != nullptr) {
        const Value *pa = la->find("phase_bytes");
        const Value *pb = lb->find("phase_bytes");
        if (pa != nullptr && pb != nullptr && pa->isArray()
            && pb->isArray()) {
            const std::size_t n =
                std::max(pa->arr.size(), pb->arr.size());
            for (std::size_t p = 0; p < n; ++p) {
                const double va =
                    p < pa->arr.size() ? pa->arr[p].number : 0;
                const double vb =
                    p < pb->arr.size() ? pb->arr[p].number : 0;
                if (va == vb)
                    continue;
                std::string name = "phase-" + std::to_string(p);
                if (phases != nullptr && phases->isArray()
                    && p < phases->arr.size())
                    name = phases->arr[p].str;
                Delta d;
                d.key = "timeseries.phase_bytes." + name;
                d.a = va;
                d.b = vb;
                d.note = "delivered bytes moved in phase " + name;
                out.deltas.push_back(std::move(d));
                note << "phase " << name << " bytes "
                     << static_cast<long long>(vb - va) << "; ";
            }
        }
        const Value *ra = la->find("rail_flits");
        const Value *rb = lb->find("rail_flits");
        if (ra != nullptr && rb != nullptr && ra->isArray()
            && rb->isArray()) {
            const std::size_t n =
                std::max(ra->arr.size(), rb->arr.size());
            for (std::size_t r = 0; r < n; ++r) {
                const double va =
                    r < ra->arr.size() ? ra->arr[r].number : 0;
                const double vb =
                    r < rb->arr.size() ? rb->arr[r].number : 0;
                if (va == vb)
                    continue;
                Delta d;
                d.key = "timeseries.rail_flits.rail"
                        + std::to_string(r);
                d.a = va;
                d.b = vb;
                d.note = "traffic moved on rail " + std::to_string(r);
                out.deltas.push_back(std::move(d));
                note << "rail " << r << " flits "
                     << static_cast<long long>(vb - va) << "; ";
            }
        }
    }

    // First sample window where the series disagree at all.
    const std::size_t frames =
        std::min(fa->arr.size(), fb->arr.size());
    for (std::size_t i = 0; i < frames; ++i) {
        // Frames are flat objects of numbers and number arrays;
        // member-order is writer-fixed, so a direct compare works.
        const Value &va = fa->arr[i];
        const Value &vb = fb->arr[i];
        bool same = va.obj.size() == vb.obj.size();
        for (std::size_t m = 0; same && m < va.obj.size(); ++m) {
            const auto &[ka, ma] = va.obj[m];
            const auto &[kb, mb] = vb.obj[m];
            same = ka == kb && ma.number == mb.number
                   && ma.arr.size() == mb.arr.size();
            for (std::size_t e = 0; same && e < ma.arr.size(); ++e)
                same = ma.arr[e].number == mb.arr[e].number;
        }
        if (!same) {
            note << "series first diverge at tick "
                 << static_cast<long long>(va.num("tick")) << " (frame "
                 << i << " of " << frames << ")";
            return note.str();
        }
    }
    if (fa->arr.size() != fb->arr.size())
        note << "series lengths differ (" << fa->arr.size() << " vs "
             << fb->arr.size() << " frames)";
    return note.str();
}

void
diffMetrics(const Value &a, const Value &b, Diff &out)
{
    out.commit_a = a.text("commit", out.commit_a);
    out.commit_b = b.text("commit", out.commit_b);
    // Totals that define the run's outcome gate the verdict; energy
    // is derived from the hop counters, so it is context only.
    diffNumericObject(a, b, "result", true, out);
    diffNumericObject(a, b, "network_stats", true, out);
    diffNumericObject(a, b, "lifetime_stats", true, out);
    diffNumericObject(a, b, "report", true, out);
    diffNumericObject(a, b, "energy", false, out);

    const std::string note = attributeFromTimeseries(a, b, out);
    bool any_gating = false;
    for (Delta &d : out.deltas) {
        if (!d.gating)
            continue;
        any_gating = true;
        if (d.note.empty())
            d.note = note;
        if (d.note.empty())
            out.unattributed.push_back(d.key);
    }
    // Identical totals but diverging series: still a behavior change.
    if (!any_gating && !note.empty())
        out.unattributed.push_back("timeseries (" + note + ")");
}

void
diffProfile(const Value &a, const Value &b, Diff &out)
{
    out.commit_a = a.text("commit", out.commit_a);
    out.commit_b = b.text("commit", out.commit_b);
    const Value *ra = a.find("run");
    const Value *rb = b.find("run");
    const double cyc_a = ra != nullptr ? ra->num("cycles") : 0;
    const double cyc_b = rb != nullptr ? rb->num("cycles") : 0;

    // Critical-path attribution: when both paths tile their run
    // (ok == true), category deltas + tail_wait delta sum exactly to
    // the cycles delta; anything left over is unattributed.
    const Value *ca = a.find("critical_path");
    const Value *cb = b.find("critical_path");
    double explained = 0;
    bool tiled = false;
    std::ostringstream note;
    if (ca != nullptr && cb != nullptr) {
        const Value *boolv = ca->find("ok");
        const Value *boolvb = cb->find("ok");
        tiled = boolv != nullptr && boolv->boolean
                && boolvb != nullptr && boolvb->boolean;
        const Value *rolla = ca->find("rollup");
        const Value *rollb = cb->find("rollup");
        if (rolla != nullptr && rollb != nullptr
            && rolla->isObject()) {
            for (const auto &[cat, va] : rolla->obj) {
                const double vb = rollb->num(cat, 0);
                explained += vb - va.number;
                if (va.number == vb)
                    continue;
                Delta d;
                d.key = "critical_path.rollup." + cat;
                d.a = va.number;
                d.b = vb;
                d.note = "critical-path " + cat + " cycles";
                out.deltas.push_back(std::move(d));
                note << cat << " "
                     << static_cast<long long>(vb - va.number)
                     << "; ";
            }
        }
        const double tail_a = ca->num("tail_wait");
        const double tail_b = cb->num("tail_wait");
        explained += tail_b - tail_a;
        if (tail_a != tail_b) {
            Delta d;
            d.key = "critical_path.tail_wait";
            d.a = tail_a;
            d.b = tail_b;
            d.note = "tail wait after last delivery";
            out.deltas.push_back(std::move(d));
            note << "tail_wait "
                 << static_cast<long long>(tail_b - tail_a) << "; ";
        }
    }

    if (cyc_a != cyc_b) {
        Delta d;
        d.key = "run.cycles";
        d.a = cyc_a;
        d.b = cyc_b;
        d.gating = true;
        d.note = note.str();
        if (d.note.empty())
            out.unattributed.push_back(d.key);
        out.deltas.push_back(std::move(d));
    }
    if (tiled && explained != cyc_b - cyc_a) {
        std::ostringstream oss;
        oss << "run.cycles residual "
            << static_cast<long long>((cyc_b - cyc_a) - explained)
            << " cycles beyond the critical-path rollup";
        out.unattributed.push_back(oss.str());
    }

    // Per-phase summaries: context for where latency moved.
    const Value *pa = a.find("phases");
    const Value *pb = b.find("phases");
    if (pa != nullptr && pb != nullptr && pa->isArray()
        && pb->isArray()) {
        const std::size_t n = std::min(pa->arr.size(), pb->arr.size());
        for (std::size_t p = 0; p < n; ++p) {
            const double la = pa->arr[p].num("total_latency");
            const double lb = pb->arr[p].num("total_latency");
            if (la == lb)
                continue;
            Delta d;
            d.key = "phases." + pa->arr[p].text("name", "phase")
                    + ".total_latency";
            d.a = la;
            d.b = lb;
            d.note = "aggregate message latency in this phase";
            out.deltas.push_back(std::move(d));
        }
    }
    diffNumericObject(a, b, "summary", false, out);
}

void
diffResults(const Value &a, const Value &b, Diff &out)
{
    const Value *ra = a.find("results");
    const Value *rb = b.find("results");
    std::map<std::string, const Value *> rows_b;
    for (const Value &row : rb->arr)
        rows_b[row.text("name")] = &row;

    for (const Value &row : ra->arr) {
        const std::string name = row.text("name");
        out.commit_a = row.text("commit", out.commit_a);
        auto it = rows_b.find(name);
        if (it == rows_b.end()) {
            Delta d;
            d.key = name;
            d.a = row.num("cycles");
            d.note = "row only in A";
            out.deltas.push_back(std::move(d));
            continue;
        }
        const Value &other = *it->second;
        out.commit_b = other.text("commit", out.commit_b);
        const double ca = row.num("cycles");
        const double cb = other.num("cycles");
        if (ca != cb) {
            Delta d;
            d.key = name + ".cycles";
            d.a = ca;
            d.b = cb;
            d.gating = true;
            d.note = "simulated cycles for this config";
            out.deltas.push_back(std::move(d));
        }
        const double ba = row.num("bandwidth_gbps");
        const double bb = other.num("bandwidth_gbps");
        if (ba != bb) {
            Delta d;
            d.key = name + ".bandwidth_gbps";
            d.a = ba;
            d.b = bb;
            d.note = "derived from cycles";
            out.deltas.push_back(std::move(d));
        }
        rows_b.erase(it);
    }
    for (const auto &[name, row] : rows_b) {
        Delta d;
        d.key = name;
        d.b = row->num("cycles");
        d.note = "row only in B";
        out.deltas.push_back(std::move(d));
    }
}

void
writeVerdictJson(std::ostream &os, const Diff &diff,
                 const std::string &path_a, const std::string &path_b,
                 double tolerance, bool regression)
{
    using multitree::obs::jsonQuote;
    os << "{\n";
    os << "  \"schema_version\": 1,\n";
    os << "  \"kind\": " << jsonQuote(diff.kind) << ",\n";
    os << "  \"a\": {\"path\": " << jsonQuote(path_a)
       << ", \"commit\": " << jsonQuote(diff.commit_a) << "},\n";
    os << "  \"b\": {\"path\": " << jsonQuote(path_b)
       << ", \"commit\": " << jsonQuote(diff.commit_b) << "},\n";
    os << "  \"tolerance\": " << tolerance << ",\n";
    os << "  \"regression\": " << (regression ? "true" : "false")
       << ",\n";
    os << "  \"deltas\": [";
    const char *sep = "\n";
    for (const Delta &d : diff.deltas) {
        os << sep << "    {\"key\": " << jsonQuote(d.key)
           << ", \"a\": " << d.a << ", \"b\": " << d.b
           << ", \"rel\": " << relDelta(d.a, d.b) << ", \"gating\": "
           << (d.gating ? "true" : "false")
           << ", \"attribution\": " << jsonQuote(d.note) << "}";
        sep = ",\n";
    }
    os << (diff.deltas.empty() ? "]" : "\n  ]") << ",\n";
    os << "  \"unattributed\": [";
    sep = "";
    for (const std::string &u : diff.unattributed) {
        os << sep << jsonQuote(u);
        sep = ", ";
    }
    os << "]\n}\n";
}

void
writeMarkdownReport(std::ostream &os, const Diff &diff,
                    const std::string &path_a,
                    const std::string &path_b, double tolerance,
                    bool regression)
{
    os << "# mtdiff: " << diff.kind << " comparison\n\n";
    os << "| side | file | commit |\n|---|---|---|\n";
    os << "| A | `" << path_a << "` | `" << diff.commit_a << "` |\n";
    os << "| B | `" << path_b << "` | `" << diff.commit_b << "` |\n\n";
    os << "**Verdict:** "
       << (regression ? "REGRESSION" : "no regression")
       << " (tolerance " << tolerance << ")\n\n";
    if (diff.deltas.empty()) {
        os << "The runs are identical on every compared field.\n";
        return;
    }
    os << "## Deltas\n\n";
    os << "| key | A | B | rel | gating | attribution |\n";
    os << "|---|---|---|---|---|---|\n";
    for (const Delta &d : diff.deltas) {
        char rel[32];
        std::snprintf(rel, sizeof rel, "%.3g", relDelta(d.a, d.b));
        os << "| `" << d.key << "` | " << d.a << " | " << d.b << " | "
           << rel << " | " << (d.gating ? "yes" : "no") << " | "
           << (d.note.empty() ? "-" : d.note) << " |\n";
    }
    if (!diff.unattributed.empty()) {
        os << "\n## Unattributed\n\n";
        for (const std::string &u : diff.unattributed)
            os << "- " << u << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path_a, path_b, out_path, report_path;
    double tolerance = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--tolerance")
            tolerance = std::strtod(next(), nullptr);
        else if (a == "--out")
            out_path = next();
        else if (a == "--report")
            report_path = next();
        else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            usage();
            return 2;
        } else if (path_a.empty())
            path_a = a;
        else if (path_b.empty())
            path_b = a;
        else {
            usage();
            return 2;
        }
    }
    if (path_a.empty() || path_b.empty()) {
        usage();
        return 2;
    }

    auto doc_a = parseFile(path_a);
    auto doc_b = parseFile(path_b);
    if (!doc_a || !doc_b) {
        std::fprintf(stderr, "mtdiff: cannot read/parse %s\n",
                     !doc_a ? path_a.c_str() : path_b.c_str());
        return 2;
    }

    const std::string kind_a = detectKind(*doc_a);
    const std::string kind_b = detectKind(*doc_b);
    if (kind_a.empty() || kind_b.empty() || kind_a != kind_b) {
        std::fprintf(stderr,
                     "mtdiff: inputs are %s vs %s — need two "
                     "metrics, two profiles or two results files\n",
                     kind_a.empty() ? "unrecognized" : kind_a.c_str(),
                     kind_b.empty() ? "unrecognized"
                                    : kind_b.c_str());
        return 2;
    }

    // Absent stamps (pre-versioning files) read as version 1.
    const int want = expectedSchema(kind_a);
    const int sv_a =
        static_cast<int>(doc_a->num("schema_version", 1));
    const int sv_b =
        static_cast<int>(doc_b->num("schema_version", 1));
    if (sv_a != want || sv_b != want) {
        std::fprintf(stderr,
                     "mtdiff: %s schema_version mismatch (A=%d, "
                     "B=%d, this build reads %d)\n",
                     kind_a.c_str(), sv_a, sv_b, want);
        return 2;
    }

    Diff diff;
    diff.kind = kind_a;
    if (kind_a == "metrics")
        diffMetrics(*doc_a, *doc_b, diff);
    else if (kind_a == "profile")
        diffProfile(*doc_a, *doc_b, diff);
    else
        diffResults(*doc_a, *doc_b, diff);

    bool regression = !diff.unattributed.empty();
    for (const Delta &d : diff.deltas) {
        if (d.gating && relDelta(d.a, d.b) > tolerance)
            regression = true;
    }

    if (out_path.empty()) {
        writeVerdictJson(std::cout, diff, path_a, path_b, tolerance,
                         regression);
    } else {
        std::ofstream out(out_path);
        if (!out) {
            std::fprintf(stderr, "mtdiff: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        writeVerdictJson(out, diff, path_a, path_b, tolerance,
                         regression);
    }
    if (!report_path.empty()) {
        std::ofstream out(report_path);
        if (!out) {
            std::fprintf(stderr, "mtdiff: cannot write %s\n",
                         report_path.c_str());
            return 2;
        }
        writeMarkdownReport(out, diff, path_a, path_b, tolerance,
                            regression);
    }
    return regression ? 1 : 0;
}
