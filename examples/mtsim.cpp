/**
 * @file
 * mtsim — the command-line front end to the simulator.
 *
 * Runs one collective on one topology and prints a full report:
 * timing, bandwidth, wire/energy accounting, schedule shape, and
 * optionally the schedule itself as DOT or CSV.
 *
 *   ./mtsim --topo torus-8x8 --algo multitree --bytes 4194304
 *           [--collective allreduce|reducescatter|allgather|alltoall]
 *           [--backend flow|flit] [--msg] [--reduction-bw N]
 *           [--dump dot|csv]
 *           [--seed N] [--drop P] [--corrupt P] [--degrade CH:CYC]
 *           [--kill-link CH@FROM[-UNTIL]]
 *           [--kill-rail ISLAND:RAIL@TICK]
 *           [--reliable] [--recovery off|failover|repair+resume]
 *           [--trace-out FILE] [--metrics-out FILE]
 *           [--timeline] [--timeline-window TICKS]
 *           [--timeseries] [--timeseries-every TICKS]
 *           [--timeseries-csv FILE]
 *           [--profile-out FILE] [--heatmap] [--heatmap-csv FILE]
 *           [--energy]
 *
 * The fault flags attach a deterministic fault plan (seeded by
 * --seed) to the fabric; --reliable arms the end-to-end
 * retransmission layer so lossy runs still complete with intact
 * data. Faulted runs print the fault/reliability accounting and, if
 * the collective wedges, the watchdog diagnostic.
 *
 * Permanent failures: --kill-link downs one channel for a tick
 * interval (open-ended by default); --kill-rail downs every spine
 * channel of one rail at an island's gateway on a hier: fabric, both
 * directions, forever. --recovery arms the self-healing layer
 * (implies --reliable): "failover" masks confirmed-dead rails and
 * re-steers, "repair+resume" additionally recomputes routes around
 * dead links and re-issues only the transfers still open.
 *
 * Observability: --trace-out records the run's lifecycle events and
 * writes Chrome/Perfetto trace-event JSON (open in ui.perfetto.dev);
 * --metrics-out writes the JSON metrics snapshot; --timeline prints
 * per-link busy-fraction rows to stdout.
 *
 * Time series: --timeseries attaches the fixed-cadence sampler
 * (cadence set by --timeseries-every, default 256 cycles). The
 * series lands as a "timeseries" section in --metrics-out, as
 * counter tracks in --trace-out, and as wide CSV via
 * --timeseries-csv (either flag implies --timeseries).
 *
 * Profiling: --profile-out attaches the latency-attribution profiler
 * and writes the JSON profile (per-message breakdowns, router
 * counters, the critical path) plus a human-readable critical-path
 * report on stdout; --heatmap prints link and router congestion maps;
 * --heatmap-csv writes the per-channel loads as CSV; --energy prints
 * the first-order energy model's full breakdown.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "coll/export.hh"
#include "coll/hierarchical.hh"
#include "coll/primitives.hh"
#include "coll/validate.hh"
#include "common/strings.hh"
#include "core/multitree.hh"
#include "net/energy.hh"
#include "obs/heatmap.hh"
#include "obs/perfetto.hh"
#include "obs/profile.hh"
#include "obs/sampler.hh"
#include "obs/timeline.hh"
#include "obs/trace.hh"
#include "fault/health.hh"
#include "runtime/machine.hh"
#include "runtime/metrics.hh"
#include "topo/factory.hh"
#include "topo/hierarchical.hh"

namespace {

using namespace multitree;

/** One --kill-rail request, resolved against the topology later. */
struct RailKill {
    int island = -1;
    int rail = -1;
    Tick from = 0;
};

struct Args {
    std::string topo = "torus-8x8";
    std::string algo = "multitree";
    std::string collective = "allreduce";
    std::string backend = "flow";
    std::string dump;
    std::uint64_t bytes = 4 * MiB;
    std::uint32_t reduction_bw = 0;
    bool msg = false;
    std::uint64_t seed = 1;
    double drop = 0;
    double corrupt = 0;
    int degrade_channel = -1;
    Tick degrade_cycles = 0;
    std::vector<fault::LinkFault> kills;
    std::vector<RailKill> rail_kills;
    bool reliable = false;
    fault::RecoveryPolicy recovery = fault::RecoveryPolicy::Off;
    std::string trace_out;
    std::string metrics_out;
    bool timeline = false;
    Tick timeline_window = 0; ///< 0 = auto (~64 buckets)
    bool timeseries = false;
    Tick timeseries_every = 256;
    std::string timeseries_csv;
    std::string profile_out;
    bool heatmap = false;
    std::string heatmap_csv;
    bool energy_report = false;
    bool dense_tick = false;
    std::uint32_t threads = 1;
    std::string rail_policy = "rr";
    net::InNetworkMode in_network = net::InNetworkMode::Off;
    std::uint32_t combiner_entries = 0; ///< 0 = backend default
};

void
usage()
{
    std::printf(
        "usage: mtsim [--topo SPEC] [--algo NAME] [--bytes N]\n"
        "             [--collective allreduce|reducescatter|"
        "allgather|alltoall]\n"
        "             [--backend flow|flit] [--msg] [--dense-tick]\n"
        "             [--threads N]\n"
        "             [--in-network off|mcast|mcast+reduce]\n"
        "             [--combiner-entries N]\n"
        "             [--reduction-bw BYTES_PER_CYCLE] "
        "[--dump dot|csv]\n"
        "             [--seed N] [--drop PROB] [--corrupt PROB]\n"
        "             [--degrade CHANNEL:CYCLES] [--reliable]\n"
        "             [--kill-link CH@FROM[-UNTIL]]\n"
        "             [--kill-rail ISLAND:RAIL@TICK]\n"
        "             [--recovery off|failover|repair+resume]\n"
        "             [--trace-out FILE] [--metrics-out FILE]\n"
        "             [--timeline] [--timeline-window TICKS]\n"
        "             [--timeseries] [--timeseries-every TICKS]\n"
        "             [--timeseries-csv FILE]\n"
        "             [--profile-out FILE] [--heatmap]\n"
        "             [--heatmap-csv FILE] [--energy]\n"
        "             [--rail-policy rr|backlog]\n"
        "             [--list-topologies] [--list-algorithms]\n"
        "topologies: torus-WxH mesh-WxH fattree-{16,64,L:P:S} "
        "bigraph-UxL\n"
        "            hier:<island>+<spine>[,rails=N] "
        "(--list-topologies for all)\n"
        "algorithms: ring dbtree ring2d hd hdrm multitree "
        "multitree-nolockstep multitree-msg\n"
        "            hier:<island>+<spine> "
        "(--list-algorithms for all)\n");
}

void
listTopologies()
{
    std::printf(
        "topology specs (SPEC for --topo):\n"
        "  torus-WxH         2D torus, e.g. torus-8x8\n"
        "  mesh-WxH          2D mesh (no wraps)\n"
        "  torus3d-XxYxZ     3D torus\n"
        "  fattree-16        2-level fat tree, 4 leaves x 4 nodes\n"
        "  fattree-64        2-level fat tree, 8 leaves x 8 nodes\n"
        "  fattree-L:P:S     L leaf switches x P nodes, S spines\n"
        "  bigraph-UxL       BiGraph, U upper x L lower switches\n"
        "  dragonfly-G:P     dragonfly, G groups x P nodes each\n"
        "  hier:<island>+<spine>[,rails=N]\n"
        "                    hierarchical fabric: one <island> copy\n"
        "                    per <spine> end node, every spine link\n"
        "                    widened to N parallel rails; e.g.\n"
        "                    hier:torus-2x2+fattree-2:2:2,rails=2\n");
}

void
listAlgorithms()
{
    std::printf("registered algorithms (NAME for --algo):\n");
    for (const auto &v : coll::algorithmVariants()) {
        // Tree-shaped schedules carry fan-out >= 2 gather edges, the
        // shape --in-network fuses into single multicast injections.
        const bool fuses =
            v.base == "multitree" || v.base == "dbtree";
        std::printf("  %-22s builds %s%s%s\n", v.name.c_str(),
                    v.base.c_str(),
                    v.flow_control
                        ? " (message-based flow control)"
                        : "",
                    fuses ? " [benefits from --in-network]" : "");
    }
    std::printf(
        "  hier:<island>+<spine>  composed hierarchical all-reduce\n"
        "                         (island/spine = any name above;\n"
        "                         needs a hier: topology), e.g.\n"
        "                         hier:multitree+ring\n");
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                usage();
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "--topo")
            args.topo = next();
        else if (a == "--algo")
            args.algo = next();
        else if (a == "--bytes")
            args.bytes = std::strtoull(next(), nullptr, 10);
        else if (a == "--collective")
            args.collective = next();
        else if (a == "--backend")
            args.backend = next();
        else if (a == "--dump")
            args.dump = next();
        else if (a == "--reduction-bw")
            args.reduction_bw = static_cast<std::uint32_t>(
                std::strtoul(next(), nullptr, 10));
        else if (a == "--msg")
            args.msg = true;
        else if (a == "--seed")
            args.seed = std::strtoull(next(), nullptr, 10);
        else if (a == "--drop")
            args.drop = std::strtod(next(), nullptr);
        else if (a == "--corrupt")
            args.corrupt = std::strtod(next(), nullptr);
        else if (a == "--degrade") {
            const char *spec = next();
            const char *colon = std::strchr(spec, ':');
            if (colon == nullptr) {
                usage();
                return 1;
            }
            args.degrade_channel =
                static_cast<int>(std::strtol(spec, nullptr, 10));
            args.degrade_cycles = std::strtoull(colon + 1, nullptr,
                                                10);
        } else if (a == "--kill-link") {
            // CH@FROM[-UNTIL]: permanent (or windowed) link-down
            // fault on channel CH starting at tick FROM.
            const char *spec = next();
            const char *at = std::strchr(spec, '@');
            if (at == nullptr) {
                usage();
                return 1;
            }
            fault::LinkFault lf;
            lf.channel =
                static_cast<int>(std::strtol(spec, nullptr, 10));
            char *end = nullptr;
            lf.from = std::strtoull(at + 1, &end, 10);
            if (end != nullptr && *end == '-')
                lf.until = std::strtoull(end + 1, nullptr, 10);
            lf.down = true;
            args.kills.push_back(lf);
        } else if (a == "--kill-rail") {
            // ISLAND:RAIL@TICK: down every spine channel of rail
            // RAIL at island ISLAND's gateway, forever from TICK.
            const char *spec = next();
            const char *colon = std::strchr(spec, ':');
            const char *at = std::strchr(spec, '@');
            if (colon == nullptr || at == nullptr || at < colon) {
                usage();
                return 1;
            }
            RailKill rk;
            rk.island =
                static_cast<int>(std::strtol(spec, nullptr, 10));
            rk.rail = static_cast<int>(
                std::strtol(colon + 1, nullptr, 10));
            rk.from = std::strtoull(at + 1, nullptr, 10);
            args.rail_kills.push_back(rk);
        } else if (a == "--recovery") {
            const std::string p = next();
            if (p == "off") {
                args.recovery = fault::RecoveryPolicy::Off;
            } else if (p == "failover") {
                args.recovery = fault::RecoveryPolicy::Failover;
            } else if (p == "repair+resume") {
                args.recovery = fault::RecoveryPolicy::RepairResume;
            } else {
                usage();
                return 1;
            }
        } else if (a == "--reliable")
            args.reliable = true;
        else if (a == "--trace-out")
            args.trace_out = next();
        else if (a == "--metrics-out")
            args.metrics_out = next();
        else if (a == "--timeline")
            args.timeline = true;
        else if (a == "--timeline-window")
            args.timeline_window = std::strtoull(next(), nullptr, 10);
        else if (a == "--timeseries")
            args.timeseries = true;
        else if (a == "--timeseries-every") {
            args.timeseries = true;
            args.timeseries_every =
                std::strtoull(next(), nullptr, 10);
            if (args.timeseries_every == 0) {
                std::fprintf(stderr, "--timeseries-every needs a "
                                     "positive tick count\n");
                return 1;
            }
        } else if (a == "--timeseries-csv") {
            args.timeseries = true;
            args.timeseries_csv = next();
        }
        else if (a == "--profile-out")
            args.profile_out = next();
        else if (a == "--heatmap")
            args.heatmap = true;
        else if (a == "--heatmap-csv")
            args.heatmap_csv = next();
        else if (a == "--energy")
            args.energy_report = true;
        else if (a == "--dense-tick")
            args.dense_tick = true;
        else if (a == "--threads") {
            char *end = nullptr;
            const char *v = next();
            unsigned long t = std::strtoul(v, &end, 10);
            if (end == v || *end != '\0' || t < 1 || t > 1024) {
                std::fprintf(stderr,
                             "error: --threads needs an integer in "
                             "[1, 1024], got '%s'\n",
                             v);
                return 1;
            }
            args.threads = static_cast<std::uint32_t>(t);
        }
        else if (a == "--in-network") {
            const std::string m = next();
            if (m == "off") {
                args.in_network = net::InNetworkMode::Off;
            } else if (m == "mcast") {
                args.in_network = net::InNetworkMode::Multicast;
            } else if (m == "mcast+reduce") {
                args.in_network =
                    net::InNetworkMode::MulticastReduce;
            } else {
                std::fprintf(stderr,
                             "error: --in-network must be off, "
                             "mcast, or mcast+reduce, got '%s'\n",
                             m.c_str());
                return 1;
            }
        } else if (a == "--combiner-entries") {
            char *end = nullptr;
            const char *v = next();
            unsigned long n = std::strtoul(v, &end, 10);
            if (end == v || *end != '\0' || n < 1 || n > 65536) {
                std::fprintf(stderr,
                             "error: --combiner-entries needs an "
                             "integer in [1, 65536], got '%s'\n",
                             v);
                return 1;
            }
            args.combiner_entries = static_cast<std::uint32_t>(n);
        }
        else if (a == "--rail-policy")
            args.rail_policy = next();
        else if (a == "--list-topologies") {
            listTopologies();
            return 0;
        } else if (a == "--list-algorithms") {
            listAlgorithms();
            return 0;
        } else {
            usage();
            return a == "--help" || a == "-h" ? 0 : 1;
        }
    }

    if (args.bytes == 0 || args.bytes % 4 != 0) {
        std::fprintf(stderr, "--bytes must be a positive multiple "
                             "of 4 (float32 gradients)\n");
        return 1;
    }
    auto topo = topo::makeTopology(args.topo);

    // Composed "hier:<island>+<spine>" algorithms bypass the variant
    // registry: the components resolve there instead.
    std::string hier_island, hier_spine;
    const bool hier_algo = coll::parseHierarchicalAlgo(
        args.algo, hier_island, hier_spine);
    std::optional<net::FlowControlMode> fc_override;

    coll::Schedule sched;
    if (hier_algo) {
        auto *hier =
            dynamic_cast<const topo::HierarchicalTopology *>(
                topo.get());
        if (hier == nullptr) {
            std::fprintf(stderr,
                         "%s needs a hier: topology, got %s\n",
                         args.algo.c_str(), topo->name().c_str());
            return 1;
        }
        if (args.collective != "allreduce") {
            std::fprintf(stderr, "composed hierarchical algorithms "
                                 "support allreduce only\n");
            return 1;
        }
        sched = coll::composeHierarchical(*hier, hier_island,
                                          hier_spine, args.bytes);
    } else {
        // Variants like multitree-msg resolve to their schedule
        // builder plus a flow-control override in one registry
        // lookup.
        const auto &variant = coll::findAlgorithmVariant(args.algo);
        fc_override = variant.flow_control;
        auto algo = coll::makeAlgorithm(variant.base);
        if (!algo->supports(*topo)) {
            std::fprintf(stderr, "%s does not support %s\n",
                         args.algo.c_str(), topo->name().c_str());
            return 1;
        }

        if (args.collective == "allreduce") {
            sched = algo->build(*topo, args.bytes);
        } else if (args.collective == "reducescatter") {
            sched = coll::buildReduceScatter(*algo, *topo,
                                             args.bytes);
        } else if (args.collective == "allgather") {
            sched = coll::buildAllGather(*algo, *topo, args.bytes);
        } else if (args.collective == "alltoall") {
            if (args.algo == "multitree") {
                sched = coll::buildAllToAllFromTrees(
                    algo->build(*topo, 4096), args.bytes);
            } else {
                sched = coll::buildAllToAllShift(*topo, args.bytes);
            }
        } else {
            usage();
            return 1;
        }
    }

    auto valid = coll::validateSchedule(sched, *topo);
    if (!valid.ok) {
        std::fprintf(stderr, "schedule invalid: %s\n",
                     valid.error.c_str());
        return 1;
    }

    if (!args.dump.empty()) {
        if (args.dump == "dot")
            std::fputs(coll::toDot(sched, 8).c_str(), stdout);
        else
            std::fputs(coll::toCsv(sched, *topo).c_str(), stdout);
        return 0;
    }

    runtime::RunOptions opts;
    if (args.backend == "flit")
        opts.backend = runtime::Backend::Flit;
    if (args.msg)
        opts.net.mode = net::FlowControlMode::MessageBased;
    opts.net.dense_tick = args.dense_tick;
    opts.net.threads = args.threads;
    opts.net.in_network = args.in_network;
    if (args.combiner_entries > 0)
        opts.net.combiner_entries = args.combiner_entries;
    opts.ni_reduction_bw = args.reduction_bw;
    if (args.rail_policy == "backlog") {
        opts.rail_policy = ni::RailPolicy::Backlog;
    } else if (args.rail_policy != "rr") {
        std::fprintf(stderr,
                     "--rail-policy must be rr or backlog\n");
        return 1;
    }

    // Resolve --kill-rail requests: every spine channel of the named
    // rail touching the island's gateway vertex, both directions.
    for (const RailKill &rk : args.rail_kills) {
        auto *hier =
            dynamic_cast<const topo::HierarchicalTopology *>(
                topo.get());
        if (hier == nullptr) {
            std::fprintf(stderr,
                         "--kill-rail needs a hier: topology, "
                         "got %s\n",
                         topo->name().c_str());
            return 1;
        }
        if (rk.island < 0 || rk.island >= hier->numIslands()
            || rk.rail < 0 || rk.rail >= hier->rails()) {
            std::fprintf(stderr,
                         "--kill-rail %d:%d out of range "
                         "(%d islands, %d rails)\n",
                         rk.island, rk.rail, hier->numIslands(),
                         hier->rails());
            return 1;
        }
        const topo::RailGroups rg = topo::buildRailGroups(*topo);
        const int gateway = hier->globalNode(rk.island, 0);
        std::size_t found = 0;
        for (const auto &ch : topo->channels()) {
            if (!hier->isSpineChannel(ch.id))
                continue;
            if (ch.src != gateway && ch.dst != gateway)
                continue;
            if (rg.railOf(ch.id) != rk.rail)
                continue;
            fault::LinkFault lf;
            lf.channel = ch.id;
            lf.from = rk.from;
            lf.down = true;
            args.kills.push_back(lf);
            ++found;
        }
        if (found == 0) {
            std::fprintf(stderr,
                         "--kill-rail %d:%d matched no spine "
                         "channel\n",
                         rk.island, rk.rail);
            return 1;
        }
    }

    for (const fault::LinkFault &lf : args.kills) {
        if (lf.channel < 0 || lf.channel >= topo->numChannels()) {
            std::fprintf(stderr,
                         "--kill-link channel %d out of range "
                         "(%d channels)\n",
                         lf.channel, topo->numChannels());
            return 1;
        }
    }

    // An armed recovery policy needs the reliability layer: timeouts
    // are the only evidence the health monitor consumes.
    if (args.recovery != fault::RecoveryPolicy::Off)
        args.reliable = true;

    const bool faulty = args.drop > 0 || args.corrupt > 0
                        || args.degrade_channel >= 0
                        || !args.kills.empty();
    if (faulty) {
        fault::FaultConfig fc;
        fc.seed = args.seed;
        fc.drop_prob = args.drop;
        fc.corrupt_prob = args.corrupt;
        if (args.degrade_channel >= 0) {
            fault::LinkFault lf;
            lf.channel = args.degrade_channel;
            lf.extra_latency = args.degrade_cycles;
            fc.links.push_back(lf);
        }
        for (const fault::LinkFault &lf : args.kills)
            fc.links.push_back(lf);
        opts.fault = fc;
    }
    opts.reliability.enabled = args.reliable;
    opts.recovery.policy = args.recovery;

    obs::Trace trace;
    const bool observing = !args.trace_out.empty() || args.timeline;
    if (observing)
        opts.sink = &trace;
    obs::Profiler prof;
    const bool profiling = !args.profile_out.empty() || args.heatmap
                           || !args.heatmap_csv.empty();
    if (profiling)
        opts.profiler = &prof;
    obs::Sampler sampler;
    if (args.timeseries) {
        opts.sampler = &sampler;
        opts.sample_every = args.timeseries_every;
    }

    runtime::Machine machine(*topo, opts);
    runtime::RunOverrides ov;
    ov.flow_control = fc_override;

    runtime::RunResult res;
    runtime::RunReport rep;
    if (faulty || args.reliable) {
        rep = machine.tryRun(sched, ov);
        if (!rep.ok) {
            std::fprintf(stderr, "collective wedged:\n%s",
                         rep.diagnostic.c_str());
            return 1;
        }
        res = rep.result;
    } else {
        res = machine.run(sched, ov);
    }
    auto energy = net::computeEnergy(res.flit_hops, res.head_hops,
                                     res.combiner_alu_flits);
    auto stats = sched.stats(*topo);

    bool msg_mode =
        args.msg
        || fc_override == net::FlowControlMode::MessageBased;
    std::printf("%s of %s on %s (%d nodes), %s backend%s\n",
                coll::kindName(sched.kind),
                formatBytes(args.bytes).c_str(), topo->name().c_str(),
                topo->numNodes(), args.backend.c_str(),
                msg_mode ? ", message-based flow control" : "");
    std::printf("  algorithm        %s\n", sched.algorithm.c_str());
    std::printf("  completion       %.3f us\n", res.time / 1e3);
    std::printf("  bandwidth        %.2f GB/s\n", res.bandwidth);
    std::printf("  schedule         %zu flows, %d steps, %llu "
                "transfers\n",
                sched.flows.size(), stats.total_steps,
                static_cast<unsigned long long>(stats.edge_count));
    std::printf("  messages         %llu (%.0f payload + %.0f head "
                "flits)\n",
                static_cast<unsigned long long>(res.messages),
                res.payload_flits, res.head_flits);
    if (args.in_network != net::InNetworkMode::Off) {
        std::printf("  in-network       %s: %llu multicast "
                    "injections, %llu combined groups\n",
                    net::inNetworkModeName(args.in_network),
                    static_cast<unsigned long long>(
                        res.mcast_injections),
                    static_cast<unsigned long long>(
                        res.combined_groups));
    }
    std::printf("  energy           %.2f uJ datapath + %.2f uJ "
                "control\n",
                energy.datapath_nj / 1e3, energy.control_nj / 1e3);
    if (args.energy_report) {
        const net::EnergyModel em;
        std::printf("  energy model     %.1f pJ/flit link, %.1f "
                    "pJ/flit buffer, %.1f pJ/head route+arb\n",
                    em.pj_link_per_flit, em.pj_buffer_per_flit,
                    em.pj_route_arb_per_head);
        std::printf("  energy detail    %.0f flit-hops -> %.3f uJ "
                    "datapath; %.0f head-hops -> %.3f uJ control; "
                    "%.0f ALU flits -> %.3f uJ switch ALU; "
                    "%.3f uJ total\n",
                    res.flit_hops, energy.datapath_nj / 1e3,
                    res.head_hops, energy.control_nj / 1e3,
                    res.combiner_alu_flits,
                    energy.switch_alu_nj / 1e3,
                    energy.total_nj() / 1e3);
    }
    if (sched.lockstep)
        std::printf("  lockstep NOPs    %llu windows\n",
                    static_cast<unsigned long long>(res.nop_windows));
    if (faulty || args.reliable) {
        std::printf("  faults           %llu dropped, %llu "
                    "corrupted, %llu degraded (seed %llu)\n",
                    static_cast<unsigned long long>(rep.dropped),
                    static_cast<unsigned long long>(rep.corrupted),
                    static_cast<unsigned long long>(rep.degraded),
                    static_cast<unsigned long long>(args.seed));
        if (args.reliable)
            std::printf("  reliability      %llu retransmits, %llu "
                        "acks, %llu duplicates, %llu corrupt "
                        "discarded\n",
                        static_cast<unsigned long long>(
                            rep.retransmits),
                        static_cast<unsigned long long>(rep.acks),
                        static_cast<unsigned long long>(
                            rep.duplicates),
                        static_cast<unsigned long long>(
                            rep.corrupt_discarded));
        if (args.recovery != fault::RecoveryPolicy::Off) {
            const fault::RecoveryCounters &rc = rep.recovery;
            std::printf(
                "  recovery         %s: %llu links dead, %llu "
                "rails failed over, %llu routes repaired "
                "(%llu pinned), %llu transfers resumed in %llu "
                "epochs\n",
                fault::policyName(args.recovery),
                static_cast<unsigned long long>(rc.links_dead),
                static_cast<unsigned long long>(
                    rc.rails_failed_over),
                static_cast<unsigned long long>(
                    rc.routes_repaired),
                static_cast<unsigned long long>(rc.pinned_repairs),
                static_cast<unsigned long long>(
                    rc.resumed_transfers),
                static_cast<unsigned long long>(rc.resume_epochs));
        }
    }

    const obs::FabricInfo fabric = machine.fabricInfo();
    if (!args.trace_out.empty()) {
        std::ofstream out(args.trace_out);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         args.trace_out.c_str());
            return 1;
        }
        obs::writePerfettoTrace(out, fabric, trace.events(),
                                args.timeseries ? &sampler : nullptr);
        std::printf("  trace            %s (%zu events; open in "
                    "ui.perfetto.dev)\n",
                    args.trace_out.c_str(), trace.events().size());
    }
    if (!args.metrics_out.empty()) {
        std::ofstream out(args.metrics_out);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         args.metrics_out.c_str());
            return 1;
        }
        runtime::writeMetricsJson(
            out, machine, res,
            faulty || args.reliable ? &rep : nullptr);
        std::printf("  metrics          %s\n",
                    args.metrics_out.c_str());
    }
    if (args.timeseries) {
        std::printf("  timeseries       %zu frames every %llu "
                    "cycles, %d phase%s\n",
                    sampler.frames().size(),
                    static_cast<unsigned long long>(
                        sampler.cadence()),
                    static_cast<int>(sampler.phaseNames().size()),
                    sampler.phaseNames().size() == 1 ? "" : "s");
        if (!args.timeseries_csv.empty()) {
            std::ofstream out(args.timeseries_csv);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n",
                             args.timeseries_csv.c_str());
                return 1;
            }
            sampler.writeCsv(out);
            std::printf("  timeseries csv   %s\n",
                        args.timeseries_csv.c_str());
        }
    }
    if (args.timeline) {
        Tick window = args.timeline_window;
        if (window == 0)
            window = std::max<Tick>(1, res.time / 64);
        const auto tl = obs::buildLinkTimeline(
            fabric, trace.events(), window);
        std::ostringstream oss;
        obs::renderTimelineText(oss, fabric, tl);
        std::fputs(oss.str().c_str(), stdout);
    }
    if (profiling) {
        const obs::CriticalPath cp = obs::extractCriticalPath(prof);
        if (!args.profile_out.empty()) {
            std::ofstream out(args.profile_out);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n",
                             args.profile_out.c_str());
                return 1;
            }
            obs::writeProfileJson(out, fabric, prof, cp);
            std::printf("  profile          %s (%zu message "
                        "records)\n",
                        args.profile_out.c_str(),
                        prof.records().size());
            std::ostringstream oss;
            obs::renderCriticalPath(oss, cp);
            std::fputs(oss.str().c_str(), stdout);
        }
        if (args.heatmap || !args.heatmap_csv.empty()) {
            const obs::CongestionMap map =
                obs::buildCongestionMap(fabric, prof);
            if (args.heatmap) {
                std::ostringstream oss;
                obs::renderLinkHeatmapAscii(oss, fabric, map);
                obs::renderRouterHeatmapAscii(oss, fabric, map);
                std::fputs(oss.str().c_str(), stdout);
            }
            if (!args.heatmap_csv.empty()) {
                std::ofstream out(args.heatmap_csv);
                if (!out) {
                    std::fprintf(stderr, "cannot write %s\n",
                                 args.heatmap_csv.c_str());
                    return 1;
                }
                obs::writeHeatmapCsv(out, fabric, map);
                std::printf("  heatmap csv      %s\n",
                            args.heatmap_csv.c_str());
            }
        }
    }
    return 0;
}
