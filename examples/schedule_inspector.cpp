/**
 * @file
 * Schedule inspector: reproduces the paper's worked example (§III-B,
 * Figs. 3 and 5) — MultiTree construction on a 2x2 Mesh — and prints
 * the resulting trees and per-accelerator schedule tables for any
 * topology/algorithm.
 *
 *   ./schedule_inspector [topology] [algorithm]
 *   ./schedule_inspector mesh-2x2 multitree
 */

#include <cstdio>
#include <map>
#include <string>

#include "coll/algorithm.hh"
#include "coll/validate.hh"
#include "ni/schedule_table.hh"
#include "topo/factory.hh"

int
main(int argc, char **argv)
{
    using namespace multitree;

    std::string spec = argc > 1 ? argv[1] : "mesh-2x2";
    std::string algo_name = argc > 2 ? argv[2] : "multitree";

    auto topo = topo::makeTopology(spec);
    auto algo = coll::makeAlgorithm(algo_name);
    if (!algo->supports(*topo)) {
        std::printf("%s does not support %s\n", algo_name.c_str(),
                    spec.c_str());
        return 1;
    }
    auto sched = algo->build(*topo, 4096);

    std::printf("=== %s on %s: %zu flows, %d steps (%d reduce) ===\n\n",
                algo_name.c_str(), topo->name().c_str(),
                sched.flows.size(), sched.totalSteps(),
                sched.reduceSteps());

    // Print each flow's gather tree as parent->child step edges
    // (Fig. 3d/3e view).
    for (const auto &f : sched.flows) {
        if (sched.flows.size() > 8 && f.flow_id >= 4) {
            std::printf("... (%zu more flows)\n\n",
                        sched.flows.size() - 4);
            break;
        }
        std::printf("Tree %d (root %d)\n", f.flow_id, f.root);
        std::map<int, std::string> by_step;
        for (const auto &e : f.gather) {
            by_step[e.step] += "  " + std::to_string(e.src) + "->"
                               + std::to_string(e.dst);
        }
        for (const auto &[step, edges] : by_step)
            std::printf("  gather step %d:%s\n", step, edges.c_str());
        std::printf("\n");
    }

    // The Fig. 5 schedule tables.
    auto tables = ni::buildScheduleTables(sched, *topo);
    for (const auto &t : tables) {
        if (tables.size() > 8 && t.node >= 4) {
            std::printf("... (%zu more tables)\n", tables.size() - 4);
            break;
        }
        std::printf("%s\n", ni::renderTable(t).c_str());
    }

    auto v = coll::validateSchedule(sched, *topo);
    auto c = coll::validateContentionFree(sched, *topo);
    std::printf("structural validation: %s\n",
                v.ok ? "OK" : v.error.c_str());
    std::printf("contention-free check: %s\n",
                c.ok ? "OK" : c.error.c_str());

    auto cost = ni::tableCost(topo->numNodes());
    std::printf("\nschedule table cost: %d entries x %d bits = "
                "%.2f KiB per NI\n",
                cost.entries, cost.bits_per_entry, cost.kib);
    return 0;
}
