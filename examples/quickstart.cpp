/**
 * @file
 * Quickstart: build a topology, run one MultiTree all-reduce, and
 * compare it against ring all-reduce.
 *
 *   ./quickstart [topology] [bytes]
 *   ./quickstart torus-8x8 4194304
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/strings.hh"
#include "runtime/machine.hh"
#include "topo/factory.hh"

int
main(int argc, char **argv)
{
    using namespace multitree;

    std::string spec = argc > 1 ? argv[1] : "torus-8x8";
    std::uint64_t bytes =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4 * MiB;

    auto topo = topo::makeTopology(spec);
    std::printf("All-reduce of %s over %d accelerators on %s\n\n",
                formatBytes(bytes).c_str(), topo->numNodes(),
                topo->name().c_str());

    // One persistent machine runs every algorithm back-to-back; the
    // fabric (network + NI engines) is built once and each run's
    // statistics are scoped to that run.
    runtime::Machine machine(*topo);

    TextTable table;
    table.header({"algorithm", "time (us)", "bandwidth (GB/s)",
                  "messages"});
    for (const char *algo :
         {"ring", "dbtree", "multitree", "multitree-msg"}) {
        auto res = machine.run(algo, bytes);
        table.row({algo, formatDouble(res.time / 1e3, 1),
                   formatDouble(res.bandwidth, 2),
                   std::to_string(res.messages)});
    }
    std::printf("%s\n", table.render().c_str());

    auto ring = machine.run("ring", bytes);
    auto mt = machine.run("multitree-msg", bytes);
    std::printf("MultiTree(+msg flow control) speedup over ring: "
                "%.2fx\n",
                static_cast<double>(ring.time)
                    / static_cast<double>(mt.time));
    return 0;
}
