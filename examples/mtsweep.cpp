/**
 * @file
 * mtsweep — multi-process sweep farm for paper-scale campaigns.
 *
 * Expands an algorithm × topology × size × seed cross product,
 * shards the points that still need simulating across forked worker
 * processes, and merges everything into one BENCH_results.json-format
 * file through obs/results.hh (atomic tmp+rename, merge by row
 * name). Every point's result is cached under a content hash of its
 * configuration (obs::sweepConfigHash, covering every axis that can
 * change a result: fault probabilities, rail policy, recovery policy
 * and all): a re-run whose hashes are unchanged performs zero
 * re-simulation and reproduces the merged file byte for byte, so
 * growing a campaign (more sizes, one more topology) only pays for
 * the new points.
 *
 * The hash deliberately excludes --threads and --workers: the
 * parallel flit engine is bit-identical at any thread count
 * (tests/test_activeset.cc), so a cached row is valid whatever
 * parallelism produced it. Rows carry the git commit of the build
 * that simulated them (obs::buildCommit), so a cross-run diff
 * (examples/mtdiff) can name the build behind each side.
 *
 * Workers are forked before any simulation begins, so no worker-pool
 * threads exist in the parent at fork time; each child builds its
 * fabrics (and, with --threads N, its per-simulation worker pool)
 * from scratch.
 */

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>

#include "coll/algorithm.hh"
#include "fault/fault.hh"
#include "fault/health.hh"
#include "obs/results.hh"
#include "runtime/machine.hh"
#include "topo/factory.hh"

namespace {

using namespace multitree;

struct Options {
    std::vector<std::string> topos{"torus-8x8"};
    std::vector<std::string> algos; ///< empty = every registered one
    std::vector<std::uint64_t> bytes{1u << 20};
    std::vector<std::uint64_t> seeds{1};
    std::string backend = "flit";
    double drop = 0;       ///< > 0 arms a seeded fault plan
    double corrupt = 0;    ///< > 0 arms seeded payload corruption
    bool reliable = false; ///< retransmission layer (faulted sweeps)
    bool dense = false;
    std::string rail_policy = "roundrobin";
    std::string recovery = "off"; ///< off | failover | repair+resume
    std::string in_network = "off"; ///< off | mcast | mcast+reduce
    std::uint32_t combiner_entries = 0; ///< 0 = backend default
    std::uint32_t threads = 1; ///< flit-engine domains per simulation
    int workers = 0;           ///< 0 = one per processor
    bool force = false;        ///< ignore the cache, re-simulate all
    std::string out = "BENCH_results.json";
    std::string cache_dir = ".mtsweep-cache";
};

/** One point of the campaign cross product. */
struct Point {
    std::string topo;
    std::string algo;
    std::uint64_t bytes = 0;
    std::uint64_t seed = 0;
    std::string name;  ///< results-row key
    std::string cache; ///< cache file path
};

void
usage()
{
    std::printf(
        "usage: mtsweep [--topos A,B,..] [--algos A,B,..]\n"
        "               [--bytes N,N,..] [--seeds N,N,..]\n"
        "               [--backend flow|flit] [--dense-tick]\n"
        "               [--threads N] [--workers N] [--force]\n"
        "               [--drop PROB] [--corrupt PROB] [--reliable]\n"
        "               [--rail-policy roundrobin|backlog]\n"
        "               [--recovery off|failover|repair+resume]\n"
        "               [--in-network off|mcast|mcast+reduce]\n"
        "               [--combiner-entries N]\n"
        "               [--out FILE] [--cache-dir DIR]\n"
        "Shards the cross product over forked workers; each point's\n"
        "row is cached by config hash in --cache-dir, so re-runs\n"
        "with unchanged configs re-simulate nothing.\n");
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "error: %s\n", msg.c_str());
    std::exit(2);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos)
            comma = s.size();
        if (comma > start)
            out.push_back(s.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

std::vector<std::uint64_t>
splitNumbers(const std::string &s, const char *flag)
{
    std::vector<std::uint64_t> out;
    for (const std::string &tok : splitList(s)) {
        char *end = nullptr;
        std::uint64_t v = std::strtoull(tok.c_str(), &end, 10);
        if (end == tok.c_str() || *end != '\0')
            die(std::string(flag) + " needs integers, got '" + tok
                + "'");
        out.push_back(v);
    }
    return out;
}

/** Every result-determining axis of one point, for the cache key. */
obs::SweepPointConfig
sweepConfig(const Options &opt, const Point &pt)
{
    obs::SweepPointConfig cfg;
    cfg.topo = pt.topo;
    cfg.algo = pt.algo;
    cfg.bytes = pt.bytes;
    cfg.seed = pt.seed;
    cfg.backend = opt.backend;
    cfg.drop = opt.drop;
    cfg.corrupt = opt.corrupt;
    cfg.reliable = opt.reliable;
    cfg.dense = opt.dense;
    cfg.rail_policy = opt.rail_policy;
    cfg.recovery = opt.recovery;
    cfg.in_network = opt.in_network;
    cfg.combiner_entries = opt.combiner_entries;
    return cfg;
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** The scheduler tag recorded as the row's mode column. */
std::string
modeOf(const Options &opt)
{
    if (opt.backend == "flow")
        return "flow";
    return opt.dense ? "dense" : "active";
}

/** Simulate one point and serialize its row to its cache file. */
int
runPoint(const Options &opt, const Point &pt)
{
    auto topo = topo::makeTopology(pt.topo);
    runtime::RunOptions ro;
    ro.backend = opt.backend == "flow" ? runtime::Backend::Flow
                                       : runtime::Backend::Flit;
    ro.net.dense_tick = opt.dense;
    ro.net.threads = opt.threads;
    if (opt.rail_policy == "backlog")
        ro.rail_policy = ni::RailPolicy::Backlog;
    if (opt.drop > 0 || opt.corrupt > 0) {
        fault::FaultConfig fc;
        fc.seed = pt.seed;
        fc.drop_prob = opt.drop;
        fc.corrupt_prob = opt.corrupt;
        ro.fault = fc;
    }
    ro.reliability.enabled = opt.reliable;
    if (opt.recovery == "failover")
        ro.recovery.policy = fault::RecoveryPolicy::Failover;
    else if (opt.recovery == "repair+resume")
        ro.recovery.policy = fault::RecoveryPolicy::RepairResume;
    if (opt.in_network == "mcast")
        ro.net.in_network = net::InNetworkMode::Multicast;
    else if (opt.in_network == "mcast+reduce")
        ro.net.in_network = net::InNetworkMode::MulticastReduce;
    if (opt.combiner_entries > 0)
        ro.net.combiner_entries = opt.combiner_entries;
    runtime::Machine machine(*topo, ro);

    const auto t0 = std::chrono::steady_clock::now();
    const runtime::RunResult res = machine.run(pt.algo, pt.bytes);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    obs::ResultRow row;
    row.name = pt.name;
    row.topology = pt.topo;
    row.algorithm = pt.algo;
    row.bytes = pt.bytes;
    row.cycles = res.time;
    row.bandwidth_gbps = res.bandwidth;
    row.messages = res.messages;
    row.wall_ms = wall_ms;
    row.msim_cps = wall_ms > 0 ? static_cast<double>(res.time)
                                     / (wall_ms * 1e3)
                               : 0;
    row.mode = modeOf(opt);
    row.commit = obs::buildCommit();
    if (!obs::writeResultRows(pt.cache, {row})) {
        std::fprintf(stderr, "mtsweep: cannot write %s\n",
                     pt.cache.c_str());
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                die("missing value after " + a);
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--topos") {
            opt.topos = splitList(next());
        } else if (a == "--algos") {
            opt.algos = splitList(next());
        } else if (a == "--bytes") {
            opt.bytes = splitNumbers(next(), "--bytes");
        } else if (a == "--seeds") {
            opt.seeds = splitNumbers(next(), "--seeds");
        } else if (a == "--backend") {
            opt.backend = next();
            if (opt.backend != "flow" && opt.backend != "flit")
                die("--backend must be flow or flit");
        } else if (a == "--dense-tick") {
            opt.dense = true;
        } else if (a == "--threads") {
            opt.threads = static_cast<std::uint32_t>(
                splitNumbers(next(), "--threads").at(0));
        } else if (a == "--workers") {
            opt.workers = static_cast<int>(
                splitNumbers(next(), "--workers").at(0));
        } else if (a == "--drop") {
            opt.drop = std::strtod(next(), nullptr);
        } else if (a == "--corrupt") {
            opt.corrupt = std::strtod(next(), nullptr);
        } else if (a == "--reliable") {
            opt.reliable = true;
        } else if (a == "--rail-policy") {
            opt.rail_policy = next();
            if (opt.rail_policy != "roundrobin"
                && opt.rail_policy != "backlog")
                die("--rail-policy must be roundrobin or backlog");
        } else if (a == "--recovery") {
            opt.recovery = next();
            if (opt.recovery != "off" && opt.recovery != "failover"
                && opt.recovery != "repair+resume")
                die("--recovery must be off, failover or "
                    "repair+resume");
        } else if (a == "--in-network") {
            opt.in_network = next();
            if (opt.in_network != "off" && opt.in_network != "mcast"
                && opt.in_network != "mcast+reduce")
                die("--in-network must be off, mcast or "
                    "mcast+reduce");
        } else if (a == "--combiner-entries") {
            opt.combiner_entries = static_cast<std::uint32_t>(
                splitNumbers(next(), "--combiner-entries").at(0));
            if (opt.combiner_entries < 1
                || opt.combiner_entries > 65536)
                die("--combiner-entries must be in [1, 65536]");
        } else if (a == "--force") {
            opt.force = true;
        } else if (a == "--out") {
            opt.out = next();
        } else if (a == "--cache-dir") {
            opt.cache_dir = next();
        } else {
            usage();
            die("unknown flag " + a);
        }
    }
    if (opt.algos.empty()) {
        for (const auto &v : coll::algorithmVariants())
            opt.algos.push_back(v.name);
    }
    // Recovery consumes retransmission timeouts as its failure
    // evidence, so an armed policy implies the reliability layer
    // (mirrors mtsim) — folded in before hashing so the cache key
    // sees the effective configuration.
    if (opt.recovery != "off")
        opt.reliable = true;
    if (opt.workers <= 0) {
        long n = sysconf(_SC_NPROCESSORS_ONLN);
        opt.workers = n > 0 ? static_cast<int>(n) : 1;
    }
    ::mkdir(opt.cache_dir.c_str(), 0755);

    // Expand the cross product, dropping unsupported pairs (a fat
    // tree cannot run ring2d, and so on) with a note rather than
    // silently — a sweep that quietly shrank reads as complete.
    std::vector<Point> points;
    int unsupported = 0;
    for (const std::string &topo_spec : opt.topos) {
        auto topo = topo::makeTopology(topo_spec);
        for (const std::string &algo : opt.algos) {
            auto alg = coll::makeAlgorithm(
                coll::findAlgorithmVariant(algo).base);
            if (!alg->supports(*topo)) {
                ++unsupported;
                continue;
            }
            for (std::uint64_t bytes : opt.bytes) {
                for (std::uint64_t seed : opt.seeds) {
                    Point pt;
                    pt.topo = topo_spec;
                    pt.algo = algo;
                    pt.bytes = bytes;
                    pt.seed = seed;
                    pt.name = "sweep/" + topo_spec + "/" + algo + "/"
                              + std::to_string(bytes) + "/s"
                              + std::to_string(seed) + "/"
                              + modeOf(opt);
                    // Non-default fault/rail/recovery axes join the
                    // row name so their rows never collide with the
                    // clean campaign's in the merged file.
                    if (opt.drop > 0)
                        pt.name += "/d" + std::to_string(opt.drop);
                    if (opt.corrupt > 0)
                        pt.name +=
                            "/c" + std::to_string(opt.corrupt);
                    if (opt.rail_policy != "roundrobin")
                        pt.name += "/" + opt.rail_policy;
                    if (opt.recovery != "off")
                        pt.name += "/" + opt.recovery;
                    if (opt.in_network != "off")
                        pt.name += "/" + opt.in_network;
                    if (opt.combiner_entries > 0)
                        pt.name += "/cb"
                                   + std::to_string(
                                       opt.combiner_entries);
                    pt.cache =
                        opt.cache_dir + "/"
                        + hex64(obs::sweepConfigHash(
                            sweepConfig(opt, pt)))
                        + ".json";
                    points.push_back(std::move(pt));
                }
            }
        }
    }
    if (unsupported > 0)
        std::printf("mtsweep: skipped %d unsupported "
                    "topology/algorithm pairs\n",
                    unsupported);
    if (points.empty())
        die("campaign is empty");

    // Cache partition: a point whose config-hash file already parses
    // back to its row needs no simulation at all.
    std::vector<const Point *> todo;
    int cached = 0;
    for (const Point &pt : points) {
        bool hit = false;
        if (!opt.force) {
            auto rows = obs::readResultRows(pt.cache);
            hit = rows.size() == 1 && rows[0].name == pt.name;
        }
        if (hit)
            ++cached;
        else
            todo.push_back(&pt);
    }

    // Shard the remaining points round-robin over forked workers.
    // Forking happens before any Machine exists in this process, so
    // no simulator threads are alive to duplicate.
    const int workers = std::max(
        1, std::min<int>(opt.workers,
                         static_cast<int>(todo.size())));
    if (!todo.empty()) {
        std::vector<pid_t> kids;
        for (int w = 0; w < workers; ++w) {
            pid_t pid = ::fork();
            if (pid < 0)
                die("fork failed");
            if (pid == 0) {
                int rc = 0;
                for (std::size_t i = static_cast<std::size_t>(w);
                     i < todo.size();
                     i += static_cast<std::size_t>(workers))
                    rc |= runPoint(opt, *todo[i]);
                std::_Exit(rc);
            }
            kids.push_back(pid);
        }
        int failures = 0;
        for (pid_t pid : kids) {
            int status = 0;
            ::waitpid(pid, &status, 0);
            if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
                ++failures;
        }
        if (failures > 0)
            die(std::to_string(failures) + " worker(s) failed");
    }

    // Collect every point's row from its cache file — in campaign
    // order, so the merged file is reproducible — and fold them into
    // the results file.
    std::vector<obs::ResultRow> rows;
    rows.reserve(points.size());
    for (const Point &pt : points) {
        auto r = obs::readResultRows(pt.cache);
        if (r.size() != 1)
            die("cache file " + pt.cache + " is invalid for "
                + pt.name);
        rows.push_back(std::move(r[0]));
    }
    if (!obs::mergeResultsFile(opt.out, rows))
        die("cannot write " + opt.out);

    std::printf("mtsweep: %zu points (%d cached, %zu simulated, "
                "%d workers) -> %s\n",
                points.size(), cached, todo.size(),
                todo.empty() ? 0 : workers, opt.out.c_str());
    return 0;
}
