/**
 * @file
 * Hybrid-parallel DLRM-style communication (§VII-B).
 *
 * Deep Learning Recommendation Models split their work: the huge
 * embedding tables are *model-parallel* (each accelerator owns a
 * shard, so the lookup results are exchanged with an all-to-all
 * before and after the interaction layer), while the dense MLP is
 * *data-parallel* (gradient all-reduce). This example times one such
 * iteration's communication on a chosen topology, comparing the
 * baseline primitives with the MultiTree-based ones the paper's
 * discussion promises ("the all-gather trees can also easily support
 * all-to-all").
 *
 *   ./dlrm_hybrid [topology] [emb_bytes_per_pair] [mlp_bytes]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "coll/primitives.hh"
#include "common/strings.hh"
#include "core/multitree.hh"
#include "runtime/allreduce_runtime.hh"
#include "topo/factory.hh"

int
main(int argc, char **argv)
{
    using namespace multitree;

    std::string spec = argc > 1 ? argv[1] : "torus-8x8";
    std::uint64_t per_pair =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 32 * KiB;
    std::uint64_t mlp_bytes =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 16 * MiB;

    auto topo = topo::makeTopology(spec);
    const int n = topo->numNodes();
    const std::uint64_t a2a_bytes =
        per_pair * static_cast<std::uint64_t>(n) * (n - 1);

    std::printf("DLRM hybrid iteration on %s (%d accelerators)\n",
                topo->name().c_str(), n);
    std::printf("  embedding exchange: %s per pair (%s total), "
                "twice per iteration\n",
                formatBytes(per_pair).c_str(),
                formatBytes(a2a_bytes).c_str());
    std::printf("  dense MLP gradients: %s all-reduce\n\n",
                formatBytes(mlp_bytes).c_str());

    core::MultiTreeAllReduce mt;
    auto trees = mt.build(*topo, 4096);

    // Baseline: ring-shift all-to-all + ring all-reduce.
    auto shift = coll::buildAllToAllShift(*topo, a2a_bytes);
    Tick base_a2a = runtime::runAllReduce(*topo, shift).time;
    Tick base_ar =
        runtime::runAllReduce(*topo, "ring", mlp_bytes).time;

    // Co-designed: tree-path all-to-all + MultiTree(+msg) all-reduce.
    auto tree_a2a = coll::buildAllToAllFromTrees(trees, a2a_bytes);
    runtime::RunOptions msg;
    msg.net.mode = net::FlowControlMode::MessageBased;
    Tick mt_a2a = runtime::runAllReduce(*topo, tree_a2a, msg).time;
    Tick mt_ar =
        runtime::runAllReduce(*topo, "multitree-msg", mlp_bytes).time;

    TextTable table;
    table.header({"communication", "ring/shift (us)",
                  "multitree (us)", "speedup"});
    auto row = [&](const char *what, Tick base, Tick ours) {
        table.row({what, formatDouble(base / 1e3, 1),
                   formatDouble(ours / 1e3, 1),
                   formatDouble(static_cast<double>(base) / ours, 2)
                       + "x"});
    };
    row("all-to-all (fwd)", base_a2a, mt_a2a);
    row("all-to-all (bwd)", base_a2a, mt_a2a);
    row("MLP all-reduce", base_ar, mt_ar);
    row("iteration comm total", 2 * base_a2a + base_ar,
        2 * mt_a2a + mt_ar);
    std::printf("%s\n", table.render().c_str());
    return 0;
}
