/**
 * @file
 * Distributed DNN training example (the Fig. 11 scenario): evaluate
 * one training iteration of a model on an accelerator pod and compare
 * all-reduce algorithms, with and without compute-communication
 * overlap.
 *
 *   ./dnn_training [model] [topology]
 *   ./dnn_training resnet50 torus-8x8
 */

#include <cstdio>
#include <string>

#include "coll/algorithm.hh"
#include "common/strings.hh"
#include "topo/factory.hh"
#include "train/trainer.hh"

int
main(int argc, char **argv)
{
    using namespace multitree;

    std::string model_name = argc > 1 ? argv[1] : "resnet50";
    std::string spec = argc > 2 ? argv[2] : "torus-8x8";

    auto topo = topo::makeTopology(spec);
    auto model = accel::makeModel(model_name);
    train::TrainOptions opts;
    opts.accel.batch = 16; // 16 samples per accelerator (§V-B)

    std::printf("%s on %s (%d accelerators, mini-batch %d)\n",
                model.name.c_str(), topo->name().c_str(),
                topo->numNodes(),
                opts.accel.batch * topo->numNodes());
    std::printf("parameters: %.1f M -> gradients: %s per iteration\n\n",
                model.totalParams() / 1e6,
                formatBytes(model.gradientBytes()).c_str());

    TextTable table;
    table.header({"algorithm", "fwd+bwd (ms)", "all-reduce (ms)",
                  "iter non-overlap (ms)", "iter overlap (ms)",
                  "exposed comm (ms)"});
    Tick ring_nonoverlap = 0, ring_ar = 0;
    for (const char *algo : {"ring", "dbtree", "ring2d", "multitree",
                             "multitree-msg"}) {
        auto a = coll::makeAlgorithm(
            coll::findAlgorithmVariant(algo).base);
        if (!a->supports(*topo))
            continue;
        auto t = train::evaluateIteration(model, *topo, algo, opts);
        if (std::string(algo) == "ring") {
            ring_nonoverlap = t.total_nonoverlap;
            ring_ar = t.allreduce;
        }
        table.row({algo, formatDouble((t.fwd + t.bwd) / 1e6, 2),
                   formatDouble(t.allreduce / 1e6, 2),
                   formatDouble(t.total_nonoverlap / 1e6, 2),
                   formatDouble(t.total_overlap / 1e6, 2),
                   formatDouble(t.exposed_comm / 1e6, 2)});
    }
    std::printf("%s\n", table.render().c_str());

    auto mt = train::evaluateIteration(model, *topo, "multitree-msg",
                                       opts);
    std::printf("all-reduce speedup vs ring: %.2fx, training time "
                "reduction: %.0f%%\n",
                static_cast<double>(ring_ar)
                    / static_cast<double>(mt.allreduce),
                100.0
                    * (1.0
                       - static_cast<double>(mt.total_nonoverlap)
                             / static_cast<double>(ring_nonoverlap)));
    return 0;
}
